// Image deduplication with Hamming distance search.
//
// The paper's motivating application for Hamming search (§2.2):
// images are hashed to binary codes and near-duplicates are the codes
// within Hamming distance τ of the query. This example builds a
// database of synthetic image codes containing planted near-duplicate
// groups behind a sharded engine index, then answers queries with the
// GPH baseline (pigeonhole) and the Ring filter (pigeonring), showing
// the candidate reduction — and uses Options.Limit to fetch only a
// page of duplicates, abandoning the shards past the first page.
//
// Run with:
//
//	go run ./examples/imagededup
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/bitvec"
	"repro/internal/engine"
)

func main() {
	log.SetFlags(0)
	const (
		d       = 256 // code length (e.g. spectral hashing of GIST)
		n       = 20000
		nearDup = 25 // planted duplicates of the query image
		tau     = 16 // the paper cites τ = 16 for image retrieval
	)
	rng := rand.New(rand.NewSource(7))

	// Database: random codes plus a planted group of re-encodes of one
	// "photo" (crops, compressions) that differ by a few bits.
	vecs := make([]bitvec.Vector, 0, n)
	photo := bitvec.Random(rng, d)
	for i := 0; i < nearDup; i++ {
		v := photo.Clone()
		for f := 0; f < rng.Intn(tau); f++ {
			v.Flip(rng.Intn(d))
		}
		vecs = append(vecs, v)
	}
	for len(vecs) < n {
		vecs = append(vecs, bitvec.Random(rng, d))
	}

	ix, err := engine.BuildHamming(vecs, d/16, tau, 8, 0)
	if err != nil {
		log.Fatal(err)
	}

	query := photo.Clone()
	query.Flip(3) // the query is itself a slightly different re-encode
	q := engine.VectorQuery(query)
	ctx := context.Background()

	gphRes, gphStats, err := ix.Search(ctx, q, engine.Options{ChainLength: 1})
	if err != nil {
		log.Fatal(err)
	}
	ringRes, ringStats, err := ix.Search(ctx, q, engine.Options{ChainLength: 6})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("database: %d codes of %d bits, τ = %d, 8 shards\n\n", n, d, tau)
	fmt.Printf("%-22s %12s %12s\n", "", "candidates", "results")
	fmt.Printf("%-22s %12d %12d\n", "GPH (pigeonhole)", gphStats.Candidates, len(gphRes))
	fmt.Printf("%-22s %12d %12d\n", "Ring (pigeonring l=6)", ringStats.Candidates, len(ringRes))

	if len(gphRes) != len(ringRes) {
		log.Fatal("exactness violated: the two filters disagree")
	}

	// Pagination: ask for the first 5 duplicates only. Shards that
	// cannot contribute to that first page are abandoned mid-flight.
	page, pageStats, err := ix.Search(ctx, q, engine.Options{Limit: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfirst page (limit 5, limited=%v):\n", pageStats.Limited)
	for _, id := range page {
		fmt.Printf("  image %5d at distance %d\n", id, bitvec.Hamming(vecs[id], query))
	}
}
