// Entity resolution with string edit distance search.
//
// The paper's motivating example (§2.2): the same entity appears under
// alternative spellings — al-Qaeda, al-Qaida, al-Qa'ida — and an edit
// distance search with τ = 2 captures them. This example indexes a
// name dictionary with planted spelling variants and compares the
// Pivotal baseline against the Ring filter.
//
// Run with:
//
//	go run ./examples/entityresolution
package main

import (
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/internal/strdist"
)

func main() {
	log.SetFlags(0)
	const tau = 2

	// A synthetic name dictionary plus the paper's spelling variants.
	names := dataset.IMDB(20000, 11)
	variants := []string{"al-qaeda", "al-qaida", "al-qa'ida", "al-queda", "alqaeda"}
	names = append(names, variants...)

	dict, err := strdist.BuildGramDict(names, 2)
	if err != nil {
		log.Fatal(err)
	}
	db, err := strdist.NewDB(names, dict, tau)
	if err != nil {
		log.Fatal(err)
	}

	query := "al-qaeda"
	fmt.Printf("searching %d names for ed(x, %q) <= %d\n\n", len(names), query, tau)

	pivRes, pivStats, err := db.Search(query, strdist.PivotalOptions())
	if err != nil {
		log.Fatal(err)
	}
	ringRes, ringStats, err := db.Search(query, strdist.RingOptions(3))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %10s %10s %10s\n", "", "cand-1", "cand-2", "results")
	fmt.Printf("%-22s %10d %10d %10d\n", "Pivotal (pigeonhole)",
		pivStats.Cand1, pivStats.Cand2, len(pivRes))
	fmt.Printf("%-22s %10d %10d %10d\n", "Ring (pigeonring l=3)",
		ringStats.Cand1, ringStats.Cand2, len(ringRes))

	if len(pivRes) != len(ringRes) {
		log.Fatal("exactness violated: the two filters disagree")
	}

	fmt.Printf("\nmatches:\n")
	for _, id := range ringRes {
		d := strdist.EditDistance(db.String(id), query)
		fmt.Printf("  %-12q ed = %d\n", db.String(id), d)
	}
}
