// Entity resolution with string edit distance search.
//
// The paper's motivating example (§2.2): the same entity appears under
// alternative spellings — al-Qaeda, al-Qaida, al-Qa'ida — and an edit
// distance search with τ = 2 captures them. This example indexes a
// name dictionary with planted spelling variants through the engine's
// v2 Search API and compares the Pivotal baseline (chain length 1)
// against the Ring filter.
//
// Run with:
//
//	go run ./examples/entityresolution
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/strdist"
)

func main() {
	log.SetFlags(0)
	const tau = 2

	// A synthetic name dictionary plus the paper's spelling variants.
	names := dataset.IMDB(20000, 11)
	variants := []string{"al-qaeda", "al-qaida", "al-qa'ida", "al-queda", "alqaeda"}
	names = append(names, variants...)

	// A 4-shard engine index: every search fans out across the shards
	// and honors the context, exactly as pigeonringd serves it.
	ix, err := engine.BuildString(names, 2, tau, 4, 0)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	query := "al-qaeda"
	fmt.Printf("searching %d names for ed(x, %q) <= %d\n\n", len(names), query, tau)

	q := engine.StringQuery(query)
	_, pivStats, err := ix.Search(ctx, q, engine.Options{ChainLength: 1})
	if err != nil {
		log.Fatal(err)
	}
	ringRes, ringStats, err := ix.Search(ctx, q, engine.Options{ChainLength: 3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %12s %12s\n", "", "candidates", "results")
	fmt.Printf("%-22s %12d %12d\n", "Pivotal (pigeonhole)", pivStats.Candidates, pivStats.Results)
	fmt.Printf("%-22s %12d %12d\n", "Ring (pigeonring l=3)", ringStats.Candidates, ringStats.Results)

	if pivStats.Results != ringStats.Results {
		log.Fatal("exactness violated: the two filters disagree")
	}

	fmt.Printf("\nmatches:\n")
	for _, id := range ringRes {
		d := strdist.EditDistance(names[id], query)
		fmt.Printf("  %-12q ed = %d\n", names[id], d)
	}
}
