package repro

// End-to-end integration tests: one realistic workload per τ-selection
// problem, driving dataset generation → index construction → baseline
// and Ring searches → verification, and asserting the cross-system
// invariants the paper proves (exactness, candidate subsumption,
// chain-length monotonicity).

import (
	"context"
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/hamming"
	"repro/internal/setsim"
	"repro/internal/strdist"
	"repro/internal/tokenset"
)

func TestIntegrationHamming(t *testing.T) {
	vecs := dataset.GIST(3000, 1)
	db, err := hamming.NewDB(vecs, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, qi := range dataset.SampleQueries(len(vecs), 8, 1) {
		q := vecs[qi]
		for _, tau := range []int{16, 40, 64} {
			want := db.SearchLinear(q, tau)
			gph, gphStats, err := db.Search(q, tau, hamming.GPHOptions())
			if err != nil {
				t.Fatal(err)
			}
			ring, ringStats, err := db.Search(q, tau, hamming.RingOptions(6))
			if err != nil {
				t.Fatal(err)
			}
			if !sameInts(gph, want) || !sameInts(ring, want) {
				t.Fatalf("τ=%d: exactness violated", tau)
			}
			if ringStats.Candidates > gphStats.Candidates {
				t.Fatalf("τ=%d: ring candidates %d > gph %d", tau, ringStats.Candidates, gphStats.Candidates)
			}
		}
	}
}

func TestIntegrationSetSimilarity(t *testing.T) {
	sets := dataset.DBLP(4000, 2)
	cfg := setsim.Config{Measure: setsim.Jaccard, Tau: 0.8, M: 5}
	pk, err := setsim.NewPKWiseDB(sets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := setsim.NewAllPairsDB(sets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := setsim.NewPartAllocDB(sets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, qi := range dataset.SampleQueries(len(sets), 10, 2) {
		q := sets[qi]
		want := setsim.SearchLinear(sets, q, cfg)
		for name, got := range map[string]func() ([]int, setsim.Stats, error){
			"pkwise":      func() ([]int, setsim.Stats, error) { return pk.Search(q, 1) },
			"ring":        func() ([]int, setsim.Stats, error) { return pk.Search(q, 2) },
			"adaptsearch": func() ([]int, setsim.Stats, error) { return ap.Search(q) },
			"partalloc":   func() ([]int, setsim.Stats, error) { return pa.Search(q) },
		} {
			res, _, err := got()
			if err != nil {
				t.Fatal(err)
			}
			if !sameInts(res, want) {
				t.Fatalf("%s: exactness violated for query %d", name, qi)
			}
		}
	}
}

func TestIntegrationEditDistance(t *testing.T) {
	strs := dataset.IMDB(4000, 3)
	dict, err := strdist.BuildGramDict(strs, 2)
	if err != nil {
		t.Fatal(err)
	}
	db, err := strdist.NewDB(strs, dict, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, qi := range dataset.SampleQueries(len(strs), 10, 3) {
		q := strs[qi]
		want := db.SearchLinear(q)
		piv, pivStats, err := db.Search(q, strdist.PivotalOptions())
		if err != nil {
			t.Fatal(err)
		}
		ring, ringStats, err := db.Search(q, strdist.RingOptions(3))
		if err != nil {
			t.Fatal(err)
		}
		if !sameInts(piv, want) || !sameInts(ring, want) {
			t.Fatalf("exactness violated for query %q", q)
		}
		if ringStats.Cand2 > ringStats.Cand1 || pivStats.Cand2 > pivStats.Cand1 {
			t.Fatal("cand-2 exceeded cand-1")
		}
	}
}

func TestIntegrationGraphEditDistance(t *testing.T) {
	graphs := dataset.AIDS(250, 4)
	db, err := graph.NewDB(graphs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, qi := range dataset.SampleQueries(len(graphs), 5, 4) {
		q := graphs[qi]
		want := db.SearchLinear(q)
		pars, parsStats, err := db.Search(q, graph.ParsOptions())
		if err != nil {
			t.Fatal(err)
		}
		ring, ringStats, err := db.Search(q, graph.RingOptions(3))
		if err != nil {
			t.Fatal(err)
		}
		if !sameInts(pars, want) || !sameInts(ring, want) {
			t.Fatalf("exactness violated for query %d", qi)
		}
		if ringStats.Candidates > parsStats.Candidates {
			t.Fatalf("ring candidates %d > pars %d", ringStats.Candidates, parsStats.Candidates)
		}
	}
}

// TestIntegrationPaperIntroExample ties the narrative together: the
// entity-resolution scenario from the paper's introduction, end to end.
func TestIntegrationPaperIntroExample(t *testing.T) {
	names := append(dataset.IMDB(1000, 5),
		"al-qaeda", "al-qaida", "al-qa'ida")
	dict, err := strdist.BuildGramDict(names, 2)
	if err != nil {
		t.Fatal(err)
	}
	db, err := strdist.NewDB(names, dict, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := db.Search("al-qaeda", strdist.RingOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, id := range res {
		found[db.String(id)] = true
	}
	for _, want := range []string{"al-qaeda", "al-qaida", "al-qa'ida"} {
		if !found[want] {
			t.Errorf("spelling variant %q not found (results: %v)", want, res)
		}
	}
}

// TestIntegrationSelfJoin runs the paper's other headline workload end
// to end: dedup via the engine's all-pairs self-join. The spelling
// variants planted in the corpus must surface as pairs, identically on
// a sharded and an unsharded index, with the backend's quadratic
// reference join agreeing.
func TestIntegrationSelfJoin(t *testing.T) {
	names := append(dataset.IMDB(800, 5),
		"al-qaeda", "al-qaida", "al-qa'ida")
	dict, err := strdist.BuildGramDict(names, 2)
	if err != nil {
		t.Fatal(err)
	}
	db, err := strdist.NewDB(names, dict, 2)
	if err != nil {
		t.Fatal(err)
	}
	ref := db.JoinLinear()

	ctx := context.Background()
	var prev []engine.Pair
	for _, shards := range []int{1, 4} {
		ix, err := engine.BuildString(names, 2, 2, shards, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := ix.(engine.Joiner).Join(ctx, engine.JoinOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref) {
			t.Fatalf("shards=%d: %d pairs, want %d", shards, len(got), len(ref))
		}
		for i, p := range ref {
			if got[i] != (engine.Pair{I: int64(p.I), J: int64(p.J)}) {
				t.Fatalf("shards=%d: pair %d = %v, want %v", shards, i, got[i], p)
			}
		}
		if st.Pairs != len(ref) {
			t.Fatalf("shards=%d: Stats.Pairs = %d, want %d", shards, st.Pairs, len(ref))
		}
		if prev != nil {
			for i := range prev {
				if got[i] != prev[i] {
					t.Fatalf("shard counts disagree at pair %d: %v vs %v", i, got[i], prev[i])
				}
			}
		}
		prev = got
	}

	// The planted variants (the last three ids) all pair with each
	// other: distances al-qaeda↔al-qaida = 1, ↔al-qa'ida = 2.
	base := int64(len(names) - 3)
	wantPairs := []engine.Pair{
		{I: base, J: base + 1}, {I: base, J: base + 2}, {I: base + 1, J: base + 2},
	}
	for _, w := range wantPairs {
		found := false
		for _, p := range prev {
			if p == w {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("variant pair %v missing from join output", w)
		}
	}
}

// TestIntegrationTokenPipeline exercises the dictionary path queries
// take in applications: raw tokens → relabel → search.
func TestIntegrationTokenPipeline(t *testing.T) {
	raw := [][]int32{
		{100, 200, 300, 400},
		{100, 200, 300, 401},
		{500, 600, 700, 800},
	}
	dict := tokenset.BuildDictionary(raw)
	sets := dict.RelabelAll(raw)
	cfg := setsim.Config{Measure: setsim.Jaccard, Tau: 0.6, M: 4}
	db, err := setsim.NewPKWiseDB(sets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh query arrives as raw tokens and is relabeled through the
	// same dictionary.
	q := dict.Relabel([]int32{100, 200, 300, 402})
	res, _, err := db.Search(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0] != 0 || res[1] != 1 {
		t.Errorf("results = %v, want [0 1]", res)
	}
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
